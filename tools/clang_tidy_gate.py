#!/usr/bin/env python3
"""clang-tidy gate: fail CI on diagnostics not in the committed baseline.

    python3 tools/clang_tidy_gate.py <build-dir> [--write-baseline]

Runs clang-tidy over the strict-profile surfaces -- src/obs/*.cpp (picked
up by src/obs/.clang-tidy: bugprone-* and the init checks as errors) and
src/sim/shard.cpp (same check set passed explicitly, since the root
.clang-tidy keeps the repo-wide profile looser) -- then normalizes the
diagnostics to (path, check, message) keys and compares them against
tools/clang_tidy_baseline.json. A diagnostic missing from the baseline
fails the gate; baseline entries that no longer fire are reported as
stale so they get pruned.

Needs a compile database (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
When no clang-tidy binary is on PATH the gate skips with exit 0, so local
ctest runs on toolchain-only machines stay green; CI installs clang-tidy
and gets the real check.
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "tools" / "clang_tidy_baseline.json"

# The explicit check set for files outside a strict-profile directory.
SHARD_CHECKS = (
    "bugprone-*,cppcoreguidelines-init-variables,"
    "cppcoreguidelines-pro-type-member-init,"
    "-bugprone-easily-swappable-parameters,-bugprone-narrowing-conversions"
)

# (repo-relative file, extra -checks= or None to use the on-disk config)
SURFACES = [
    ("src/obs/chrome_trace.cpp", None),
    ("src/obs/metrics.cpp", None),
    ("src/obs/recorder.cpp", None),
    ("src/obs/trace.cpp", None),
    ("src/sim/shard.cpp", SHARD_CHECKS),
]

_DIAG_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):\d+:\s+"
    r"(?P<sev>warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[\w.,-]+)\]\s*$")


def find_clang_tidy() -> str | None:
    for name in ("clang-tidy", "clang-tidy-20", "clang-tidy-19",
                 "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
                 "clang-tidy-15", "clang-tidy-14"):
        if shutil.which(name):
            return name
    return None


def run_surface(tidy: str, build_dir: Path, rel: str,
                checks: str | None) -> list[dict]:
    f = REPO / rel
    if not f.exists():
        return []
    cmd = [tidy, "-p", str(build_dir), "--quiet"]
    if checks:
        cmd.append(f"--checks={checks}")
    cmd.append(str(f))
    proc = subprocess.run(cmd, capture_output=True, text=True)
    out = []
    for line in proc.stdout.splitlines():
        m = _DIAG_RE.match(line)
        if not m:
            continue
        p = Path(m.group("path"))
        try:
            p = p.resolve().relative_to(REPO)
        except ValueError:
            continue  # diagnostic in a system/third-party header
        rel_p = p.as_posix()
        if not rel_p.startswith("src/"):
            continue
        out.append({"path": rel_p, "check": m.group("check"),
                    "message": m.group("msg")})
    return out


def main(argv: list[str]) -> int:
    if not argv or argv[0].startswith("-"):
        sys.stderr.write(__doc__)
        return 2
    build_dir = Path(argv[0])
    write = "--write-baseline" in argv[1:]

    tidy = find_clang_tidy()
    if tidy is None:
        print("clang-tidy-gate: no clang-tidy on PATH, skipping (CI "
              "installs it; local toolchain-only runs stay green)")
        return 0
    if not (build_dir / "compile_commands.json").exists():
        sys.stderr.write(
            f"clang-tidy-gate: {build_dir}/compile_commands.json not found; "
            "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON\n")
        return 2

    diags: list[dict] = []
    for rel, checks in SURFACES:
        diags.extend(run_surface(tidy, build_dir, rel, checks))

    # Dedup (header diagnostics repeat once per including TU).
    counts: dict[tuple[str, str, str], int] = {}
    for d in diags:
        k = (d["path"], d["check"], d["message"])
        counts[k] = max(counts.get(k, 0), 1)

    if write:
        data = {
            "comment": "clang-tidy diagnostics grandfathered by "
                       "tools/clang_tidy_gate.py --write-baseline. New "
                       "code must fix, not baseline.",
            "diagnostics": [
                {"path": p, "check": c, "message": m}
                for (p, c, m) in sorted(counts)
            ],
        }
        BASELINE.write_text(json.dumps(data, indent=2) + "\n")
        print(f"clang-tidy-gate: baseline written with {len(counts)} "
              f"diagnostic(s)")
        return 0

    base: set[tuple[str, str, str]] = set()
    if BASELINE.exists():
        for e in json.loads(BASELINE.read_text()).get("diagnostics", []):
            base.add((e["path"], e["check"], e["message"]))

    new = sorted(k for k in counts if k not in base)
    stale = sorted(k for k in base if k not in counts)
    for p, c, m in new:
        print(f"{p}: [{c}] {m}")
    for p, c, m in stale:
        print(f"clang-tidy-gate: stale baseline entry: {p} [{c}]")
    if new:
        print(f"clang-tidy-gate: {len(new)} new diagnostic(s) "
              f"({len(base)} baselined)")
        return 1
    print(f"clang-tidy-gate: clean ({len(base)} baselined, "
          f"{len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
