#!/usr/bin/env python3
"""Hot-path lint gate for the simulator's per-event code.

Scans src/mem, src/sim, src/htm and src/suv (the directories every simulated
memory access runs through) and rejects:

  node-container  std::map/set/unordered_map/unordered_set/list/forward_list/
                  multimap/multiset -- node-based containers whose per-access
                  pointer chasing the flat containers in common/flat_hash.hpp
                  exist to avoid.
  std-function    std::function -- type-erased calls with possible heap
                  capture; use templates or sim::SmallFn on hot paths.
                  (check/ and host-side tools may use it; they are not
                  scanned.)
  alloc-in-loop   operator new / make_unique / make_shared / malloc / calloc
                  inside a loop body -- per-iteration allocation on a path
                  that may run per simulated event.
  growth-in-loop  container growth (push_back/emplace_back/resize/reserve)
                  inside a loop body of the scheduler itself
                  (src/sim/scheduler.{hpp,cpp}): the event loop runs per
                  simulated event, so every growth call there must be
                  amortized and explicitly annotated. Scoped to the
                  scheduler because that is the one file where a stray
                  reallocation hits every event in the simulation.
  sync-in-drain   locks/atomics (std::mutex, std::atomic, fetch_*, .lock(),
                  condition variables, barrier waits) inside a loop body of
                  the shard-parallel PDES files (src/sim/shard.{hpp,cpp}).
                  The PDES design is lock-free by construction -- domains
                  share nothing and the window barrier is the only
                  synchronization -- so any per-event/per-message
                  synchronization in the drain or window loops is a design
                  regression. The single intended barrier wait carries an
                  explicit annotation.

Suppression: append `// lint: allow(<rule>)` to the offending line or the
line directly above it. Placement new (`new (buf) T`) is not an allocation
and is ignored.

Exit status: 0 when clean, 1 with a report when violations are found.
Run from the repository root (the CTest registration does).
"""

import re
import sys
from pathlib import Path

HOT_DIRS = ["src/mem", "src/sim", "src/htm", "src/suv"]
EXTENSIONS = {".hpp", ".cpp"}

NODE_CONTAINERS = re.compile(
    r"\bstd::(map|set|unordered_map|unordered_set|list|forward_list|"
    r"multimap|multiset)\s*<"
)
STD_FUNCTION = re.compile(r"\bstd::function\s*<")
# `new (` is placement new; require the allocated type to follow directly.
ALLOCATION = re.compile(
    r"(\bnew\s+[A-Za-z_:<(]|std::make_unique\s*<|std::make_shared\s*<|"
    r"\bmalloc\s*\(|\bcalloc\s*\()"
)
GROWTH = re.compile(r"\.\s*(push_back|emplace_back|resize|reserve)\s*\(")
# Files where growth-in-loop applies: the scheduler's event loop runs per
# simulated event, so unamortized container growth there taxes everything.
GROWTH_SCOPED_FILES = {"src/sim/scheduler.hpp", "src/sim/scheduler.cpp"}
SYNC = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|atomic\b|atomic<|"
    r"condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock|"
    r"counting_semaphore|binary_semaphore|latch)|"
    r"\.\s*(lock|try_lock|unlock|wait|notify_one|notify_all|"
    r"arrive_and_wait|arrive_and_drop|fetch_add|fetch_sub|fetch_or|"
    r"fetch_and|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\("
)
# Files where sync-in-drain applies: the conservative-PDES window/drain
# loops, whose determinism and throughput both depend on staying lock-free.
SYNC_SCOPED_FILES = {"src/sim/shard.hpp", "src/sim/shard.cpp"}
LOOP_HEAD = re.compile(r"\b(for|while)\s*\(")
ALLOW = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving line
    structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | "line" | "block" | '"' | "'"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if ch == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
            elif ch == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
            elif ch in "\"'":
                mode = ch
                out.append(" ")
                i += 1
            else:
                out.append(ch)
                i += 1
        elif mode == "line":
            if ch == "\n":
                mode = None
                out.append(ch)
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if ch == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
            else:
                out.append(ch if ch == "\n" else " ")
                i += 1
        else:  # string or char literal
            if ch == "\\":
                out.append("  ")
                i += 2
            elif ch == mode:
                mode = None
                out.append(" ")
                i += 1
            else:
                out.append(ch if ch == "\n" else " ")
                i += 1
    return "".join(out)


def allowed_rules(raw_lines, idx):
    """Suppressions on this line or the line directly above."""
    rules = set()
    for j in (idx, idx - 1):
        if 0 <= j < len(raw_lines):
            rules.update(ALLOW.findall(raw_lines[j]))
    return rules


def lint_file(path: Path, check_growth: bool = False,
              check_sync: bool = False):
    raw = path.read_text()
    raw_lines = raw.splitlines()
    lines = strip_comments_and_strings(raw).splitlines()
    violations = []

    # Loop tracking: remember the brace depth at which each loop body opened;
    # leaving that depth closes the loop. Single-statement (braceless) loop
    # bodies are not tracked -- acceptable for a heuristic gate.
    depth = 0
    loop_stack = []  # brace depths of open loop bodies
    pending_loop = False  # saw a loop head, waiting for its opening brace

    def report(idx, rule, msg):
        if rule not in allowed_rules(raw_lines, idx):
            violations.append((path, idx + 1, rule, msg))

    for idx, line in enumerate(lines):
        if NODE_CONTAINERS.search(line):
            report(idx, "node-container",
                   "node-based std container on a hot path "
                   "(use common/flat_hash.hpp)")
        if STD_FUNCTION.search(line):
            report(idx, "std-function",
                   "std::function on a hot path "
                   "(use a template parameter or sim::SmallFn)")
        in_loop = bool(loop_stack)
        if in_loop and ALLOCATION.search(line):
            report(idx, "alloc-in-loop",
                   "allocation inside a loop on a hot path")
        if in_loop and check_growth and GROWTH.search(line):
            report(idx, "growth-in-loop",
                   "container growth inside a scheduler loop (must be "
                   "amortized and annotated: // lint: allow(growth-in-loop))")
        if in_loop and check_sync and SYNC.search(line):
            report(idx, "sync-in-drain",
                   "lock/atomic inside a PDES window or drain loop (the "
                   "design is share-nothing; annotate the one intended "
                   "barrier with // lint: allow(sync-in-drain))")
        if LOOP_HEAD.search(line):
            pending_loop = True
        for ch in line:
            if ch == "{":
                depth += 1
                if pending_loop:
                    loop_stack.append(depth)
                    pending_loop = False
            elif ch == "}":
                while loop_stack and loop_stack[-1] >= depth:
                    loop_stack.pop()
                depth -= 1
        if pending_loop and line.rstrip().endswith(";"):
            pending_loop = False  # braceless single-statement body
    return violations


def main():
    root = Path.cwd()
    if not (root / "src").is_dir():
        sys.stderr.write("lint_hotpath.py: run from the repository root\n")
        return 2
    violations = []
    for d in HOT_DIRS:
        for path in sorted((root / d).rglob("*")):
            if path.suffix in EXTENSIONS:
                rel = path.relative_to(root).as_posix()
                violations.extend(
                    lint_file(path, check_growth=rel in GROWTH_SCOPED_FILES,
                              check_sync=rel in SYNC_SCOPED_FILES))
    if violations:
        for path, lineno, rule, msg in violations:
            print(f"{path.relative_to(root)}:{lineno}: [{rule}] {msg}")
        print(f"lint_hotpath: {len(violations)} violation(s)")
        return 1
    print("lint_hotpath: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
