#!/usr/bin/env python3
"""DEPRECATED shim: the hot-path lint gate now lives in tools/suvlint.

The regex scanner that used to be here has been replaced by the
statement-level analysis framework in tools/suvlint, which carries the
same five hot-path rules (node-container, std-function, alloc-in-loop,
growth-in-loop, sync-in-drain) plus the determinism rule set guarding
the bit-identity contract (DESIGN.md section 15).

This shim keeps old invocations working by exec'ing suvlint restricted
to the legacy rule set. Run `python3 tools/suvlint` directly for the
full analysis; this file will eventually be removed.
"""

import sys
from pathlib import Path

sys.stderr.write(
    "lint_hotpath.py is deprecated: running `python3 tools/suvlint "
    "--legacy-only` (use tools/suvlint directly for the full rule set)\n")

sys.path.insert(0, str(Path(__file__).resolve().parent / "suvlint"))

from cli import main  # noqa: E402

sys.exit(main(["--legacy-only", *sys.argv[1:]]))
