"""suvlint: determinism-aware static analysis for the SUV-TM simulator.

See DESIGN.md section 15 for the engine design, the rule catalogue and
the suppression/baseline policy. Run as `python3 tools/suvlint`.
"""
