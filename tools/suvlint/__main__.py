"""Entry point: `python3 tools/suvlint [args]`.

Running a directory puts it on sys.path, so the package's modules import
flat (`from engine import ...`); this stub just dispatches to the CLI.
"""

import sys

from cli import main

sys.exit(main())
