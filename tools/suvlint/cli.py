"""suvlint command line.

    python3 tools/suvlint [options] [dir-or-file ...]

Default invocation (no arguments) scans `src/` from the repository root
with every rule, applies tools/suvlint/baseline.json, and exits 1 on any
unbaselined, unsuppressed finding.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from engine import Engine
from rules import ALL_RULES, LEGACY_RULE_IDS, make_rules
from sarif import write_sarif

VERSION = "1.0"


def find_repo_root(start: Path) -> Path:
    p = start.resolve()
    for cand in (p, *p.parents):
        if (cand / "src").is_dir() and (cand / "tools").is_dir():
            return cand
    sys.stderr.write("suvlint: could not locate the repository root "
                     "(no src/ + tools/ above the tool)\n")
    sys.exit(2)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="suvlint",
        description="Determinism-aware static analysis for the SUV-TM "
                    "simulator (DESIGN.md section 15).")
    ap.add_argument("paths", nargs="*",
                    help="directories/files to scan, relative to the repo "
                         "root (default: src)")
    ap.add_argument("--rules",
                    help="comma-separated rule ids to run (default: all)")
    ap.add_argument("--legacy-only", action="store_true",
                    help="run only the ported lint_hotpath rule set")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    ap.add_argument("--sarif", metavar="FILE",
                    help="also write a SARIF 2.1.0 report")
    ap.add_argument("--baseline", metavar="FILE",
                    help="baseline file (default: tools/suvlint/"
                         "baseline.json; 'none' disables)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="regenerate the baseline from current findings")
    ap.add_argument("--show-suppressed", action="store_true",
                    help="also print allow()- and baseline-suppressed "
                         "findings")
    args = ap.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            scope = ",".join(cls.files or cls.dirs or ("(all)",))
            print(f"{cls.id:22} {cls.severity:8} {cls.doc}")
            print(f"{'':22} scope: {scope}")
        return 0

    root = find_repo_root(Path(__file__).parent)

    only = None
    if args.legacy_only:
        only = set(LEGACY_RULE_IDS)
    if args.rules:
        only = {r.strip() for r in args.rules.split(",") if r.strip()}
        known = {c.id for c in ALL_RULES}
        unknown = only - known
        if unknown:
            sys.stderr.write(
                f"suvlint: unknown rule(s): {', '.join(sorted(unknown))}\n")
            return 2
    rules = make_rules(only)

    if args.baseline == "none":
        baseline = None
    elif args.baseline:
        baseline = Path(args.baseline)
    else:
        baseline = root / "tools" / "suvlint" / "baseline.json"

    if args.write_baseline and baseline is None:
        sys.stderr.write("suvlint: --write-baseline needs a baseline file; "
                         "drop `--baseline none` or pass --baseline FILE\n")
        return 2

    scan = args.paths if args.paths else ["src"]
    eng = Engine(root, rules, scan, baseline)
    findings = eng.run()

    if args.write_baseline:
        eng.write_baseline(findings)
        n = sum(1 for f in findings if f.suppressed != "allow")
        print(f"suvlint: baseline written with {n} finding(s) to "
              f"{baseline}")
        return 0

    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    for f in active:
        print(f.render())
    if args.show_suppressed:
        for f in suppressed:
            print(f"{f.render()}  (suppressed: {f.suppressed})")
    for e in eng.stale_baseline:
        print(f"suvlint: stale baseline entry: [{e['rule']}] {e['path']} "
              f"({e['context'][:60]}...)"
              if len(e.get("context", "")) > 60 else
              f"suvlint: stale baseline entry: [{e['rule']}] {e['path']} "
              f"({e.get('context', '')})")

    if args.sarif:
        write_sarif(args.sarif, findings, rules, VERSION)

    n_err = sum(1 for f in active if f.severity == "error")
    n_warn = len(active) - n_err
    if active:
        print(f"suvlint: {n_err} error(s), {n_warn} warning(s) "
              f"({len(suppressed)} suppressed)")
        return 1
    print(f"suvlint: clean ({len(suppressed)} suppressed, "
          f"{len(rules)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
