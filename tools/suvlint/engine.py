"""suvlint engine: rule registry, suppressions, baseline, reporting.

The engine walks the configured source trees once, builds a
lexer.FileModel per file plus a cross-file AnalysisContext (type symbol
tables feed the determinism rules), then runs every registered rule.

Suppressions
------------
`// lint: allow(<rule>)` suppresses a finding of that rule when placed

  * on the finding's line,
  * anywhere in the contiguous //-comment block directly above it (a
    multi-line rationale keeps working), or
  * -- for loop-scoped findings -- on any line of the enclosing loop's
    header or in the comment block directly above the header (this is the
    engine-level fix for the old scanner's silently-ignored header
    annotations).

A rationale after the closing paren (`// lint: allow(rule): why`) is the
house style; determinism-rule suppressions double as the ordered-drain /
canonical-order annotations DESIGN.md section 15 describes.

Baseline
--------
Grandfathered findings live in a committed JSON baseline keyed by
(rule, path, normalized statement text) -- line numbers drift, statement
text rarely does. Baselined findings are reported as suppressed; stale
baseline entries are listed so they get cleaned up. `--write-baseline`
regenerates the file from the current findings.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from lexer import FileModel, Statement, build_model

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z0-9-]+)\)")

SEVERITIES = ("error", "warning", "note")


def _comment_block_above(raw_lines: list[str], line_idx: int) -> list[str]:
    """0-based indices of the contiguous //-comment block directly above
    `line_idx` (plus the single line directly above even when it holds
    code, for trailing same-line-above annotations)."""
    out = [line_idx - 1]
    j = line_idx - 1
    while j >= 0 and raw_lines[j].lstrip().startswith("//"):
        out.append(j)
        j -= 1
    return [k for k in out if k >= 0]


@dataclass
class Finding:
    rule: str
    severity: str
    path: str   # repo-relative posix path
    line: int   # 1-based
    message: str
    context: str = ""      # normalized statement text (baseline key)
    suppressed: str = ""   # "" | "allow" | "baseline"

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.context)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class. Subclasses set `id`, `severity`, `doc` (one-line,
    surfaces in --list-rules and SARIF) and implement check()."""

    id = ""
    severity = "error"
    doc = ""
    # Repo-relative directory prefixes this rule scans ((), = everything).
    dirs: tuple[str, ...] = ()
    # Exact repo-relative files; when set, overrides `dirs`.
    files: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if self.files:
            return path in self.files
        if not self.dirs:
            return True
        return any(path.startswith(d.rstrip("/") + "/") for d in self.dirs)

    def check(self, model: FileModel, ctx: "AnalysisContext"):
        """Yield (line_index_0_based, message, context_statement|None)."""
        raise NotImplementedError


@dataclass
class AnalysisContext:
    """Cross-file facts the rules share, built in one pre-pass."""
    models: dict[str, FileModel] = field(default_factory=dict)
    # path -> identifier -> why it's order-unstable ("FlatMap",
    # "std::unordered_map", ...): variables and data members declared in
    # that file whose type iterates in hash order. Scoped per file -- plus
    # the sibling header/source of the same stem, via nondet_why() -- so a
    # member name in one file cannot flag an unrelated identifier elsewhere
    # (same rationale as float_symbols).
    nondet_symbols: dict[str, dict[str, str]] = field(default_factory=dict)
    # identifier -> why, for accessor *functions* returning (a reference
    # to) a hash-ordered container; call sites are cross-file by nature,
    # so function names stay global.
    nondet_accessors: dict[str, str] = field(default_factory=dict)
    # path -> identifier -> "float"/"double" for declared floating
    # accumulators (per file: accumulators are local names, and a global
    # table would let a `double n` in one file taint a `uint64_t n` in
    # another).
    float_symbols: dict[str, dict[str, str]] = field(default_factory=dict)
    # struct names whose bytes feed hashes, memcmp or trace/result
    # serialization (uninit-member scope).
    serialized_structs: set[str] = field(default_factory=set)

    def nondet_why(self, path: str, name: str) -> str | None:
        """Why `name` iterates in hash order when referenced from `path`,
        or None. Checks the file's own declarations, then its sibling
        header/source (same stem -- members live in foo.hpp, loops in
        foo.cpp), then the global accessor-function table."""
        why = self.nondet_symbols.get(path, {}).get(name)
        if why:
            return why
        stem = path.rsplit(".", 1)[0]
        for other, syms in self.nondet_symbols.items():
            if other != path and other.rsplit(".", 1)[0] == stem \
                    and name in syms:
                return syms[name]
        return self.nondet_accessors.get(name)


class Engine:
    def __init__(self, root: Path, rules: list[Rule],
                 scan_dirs: list[str], baseline_path: Path | None = None):
        self.root = root
        self.rules = rules
        self.scan_dirs = scan_dirs
        self.baseline_path = baseline_path
        self.stale_baseline: list[dict] = []

    # -- file collection ------------------------------------------------------

    def collect_files(self) -> list[Path]:
        out = []
        for d in self.scan_dirs:
            base = self.root / d
            if base.is_file():
                out.append(base)
                continue
            for p in sorted(base.rglob("*")):
                if p.suffix in (".hpp", ".cpp", ".h", ".cc"):
                    out.append(p)
        return out

    # -- analysis -------------------------------------------------------------

    def build_context(self, files: list[Path]) -> AnalysisContext:
        ctx = AnalysisContext()
        for f in files:
            rel = f.relative_to(self.root).as_posix()
            ctx.models[rel] = build_model(rel, f.read_text())
        for model in ctx.models.values():
            _harvest_symbols(model, ctx)
        return ctx

    def run(self) -> list[Finding]:
        files = self.collect_files()
        ctx = self.build_context(files)
        findings: list[Finding] = []
        for rel in sorted(ctx.models):
            model = ctx.models[rel]
            for rule in self.rules:
                if not rule.applies_to(rel):
                    continue
                for line_idx, message, stmt in rule.check(model, ctx):
                    f = Finding(
                        rule=rule.id,
                        severity=rule.severity,
                        path=rel,
                        line=line_idx + 1,
                        message=message,
                        context=stmt.text if stmt is not None else
                        model.clean_lines[line_idx].strip()
                        if line_idx < len(model.clean_lines) else "",
                    )
                    if self._allowed(model, rule.id, line_idx):
                        f.suppressed = "allow"
                    findings.append(f)
        self._apply_baseline(findings)
        return findings

    # -- suppressions ---------------------------------------------------------

    def _allowed(self, model: FileModel, rule_id: str, line_idx: int) -> bool:
        lines_to_check = {line_idx}
        lines_to_check.update(_comment_block_above(model.raw_lines, line_idx))
        # Loop-header placement: an allow on the header (or in the comment
        # block directly above it) of any loop whose body contains the
        # finding also suppresses it.
        for lp in model.loops_containing(line_idx):
            for ln in range(lp.header_first_line, lp.header_last_line + 1):
                lines_to_check.add(ln)
            lines_to_check.update(
                _comment_block_above(model.raw_lines, lp.header_first_line))
        for j in lines_to_check:
            if 0 <= j < len(model.raw_lines) and \
                    rule_id in ALLOW_RE.findall(model.raw_lines[j]):
                return True
        return False

    # -- baseline -------------------------------------------------------------

    def _apply_baseline(self, findings: list[Finding]) -> None:
        if self.baseline_path is None or not self.baseline_path.exists():
            return
        data = json.loads(self.baseline_path.read_text())
        budget: dict[tuple[str, str, str], int] = {}
        for e in data.get("findings", []):
            k = (e["rule"], e["path"], e.get("context", ""))
            budget[k] = budget.get(k, 0) + int(e.get("count", 1))
        for f in findings:
            if f.suppressed:
                continue
            k = f.key()
            if budget.get(k, 0) > 0:
                budget[k] -= 1
                f.suppressed = "baseline"
        self.stale_baseline = [
            {"rule": r, "path": p, "context": c, "count": n}
            for (r, p, c), n in sorted(budget.items()) if n > 0
        ]

    def write_baseline(self, findings: list[Finding]) -> None:
        assert self.baseline_path is not None
        counts: dict[tuple[str, str, str], int] = {}
        for f in findings:
            if f.suppressed == "allow":
                continue
            counts[f.key()] = counts.get(f.key(), 0) + 1
        data = {
            "comment": "suvlint grandfathered findings; regenerate with "
                       "`python3 tools/suvlint --write-baseline`. New code "
                       "must fix or annotate, not baseline.",
            "findings": [
                {"rule": r, "path": p, "context": c, "count": n}
                for (r, p, c), n in sorted(counts.items())
            ],
        }
        self.baseline_path.write_text(json.dumps(data, indent=2) + "\n")


# --- symbol harvesting -------------------------------------------------------

NONDET_TYPES = (
    "FlatMap", "FlatSet",
    "std::unordered_map", "std::unordered_set",
    "std::unordered_multimap", "std::unordered_multiset",
)

_NONDET_DECL_RE = re.compile(
    r"\b((?:std::)?(?:FlatMap|FlatSet|unordered_map|unordered_set|"
    r"unordered_multimap|unordered_multiset))\s*<"
)

_FLOAT_DECL_RE = re.compile(
    r"\b(double|float)\s+(?:const\s+)?([A-Za-z_]\w*)\s*(?:=|\{|;|,)"
)

_MEMCMP_SIZEOF_RE = re.compile(r"\bmemcmp\s*\(.*\bsizeof\(([A-Za-z_]\w*)\)")
_STD_HASH_RE = re.compile(r"\bstd::hash\s*<\s*([A-Za-z_:]\w*)\s*>")


def _template_close(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _harvest_symbols(model: FileModel, ctx: AnalysisContext) -> None:
    floats = ctx.float_symbols.setdefault(model.path, {})
    nondet = ctx.nondet_symbols.setdefault(model.path, {})
    for st in model.statements:
        text = st.text
        # Hash-ordered container declarations: record the declared name --
        # variable, data member, or accessor function returning (a reference
        # to) the container; iterating any of them iterates hash order.
        # `std::vector<FlatSet<...>> name` also records `name`: indexing it
        # yields a hash-ordered element.
        for m in _NONDET_DECL_RE.finditer(text):
            close = _template_close(text, m.end() - 1)
            if close < 0:
                continue
            rest = text[close + 1:]
            dm = re.match(r"\s*(?:const\s*)?&?\s*([A-Za-z_]\w*)", rest)
            if not dm:
                # Wrapped in an outer template (vector-of-FlatMap etc.):
                # skip the remaining `>`s and take the declared name.
                dm = re.match(r"\s*(?:>\s*)+(?:const\s*)?&?\s*([A-Za-z_]\w*)",
                              rest)
            if not dm:
                continue
            name = dm.group(1)
            if name in ("const", "return", "auto", "typename", "using"):
                continue
            type_name = m.group(1)
            if not type_name.startswith("std::") and \
                    type_name.startswith("unordered"):
                type_name = "std::" + type_name
            # `name(` is an accessor function (cross-file by nature);
            # anything else is a variable/member, scoped to this file.
            if rest[dm.end():].lstrip().startswith("("):
                ctx.nondet_accessors[name] = type_name
            else:
                nondet[name] = type_name
        for m in _FLOAT_DECL_RE.finditer(text):
            floats[m.group(2)] = m.group(1)
        for m in _MEMCMP_SIZEOF_RE.finditer(text):
            ctx.serialized_structs.add(m.group(1))
        for m in _STD_HASH_RE.finditer(text):
            ctx.serialized_structs.add(m.group(1).split("::")[-1])
    # A defaulted operator== marks a value-comparable struct: in this
    # codebase those are exactly the types that ride in RunResult / trace
    # comparisons and bit-identity checks.
    for sd in model.structs:
        for st in sd.body_statements:
            if "operator ==" in st.text and "= default" in st.text:
                ctx.serialized_structs.add(sd.name)
                break
