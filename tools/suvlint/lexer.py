"""C++-aware lexing for suvlint.

This is not a full C++ front end: it is the smallest amount of lexical
structure the rules need to be *statement-accurate* instead of
line-accurate, which is exactly where the old regex scanner
(tools/lint_hotpath.py) had known gaps:

  * comments, string literals and char literals are stripped with line
    structure preserved, so nothing inside them can match a rule;
  * the token stream is regrouped into logical *statements* (split on
    `;`, `{`, `}`), so a call split across physical lines --
    `std::make_unique\n    <Foo>(...)` -- matches the same as a
    single-line spelling;
  * brace depth, loop bodies (including the loop-header line itself),
    range-for range expressions, and struct/class bodies are tracked so
    rules can scope themselves structurally.

Everything downstream (engine.py, rules/) consumes the FileModel built
here and never re-reads raw text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


# --- comment / string stripping ---------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blank comments and string/char literals, preserving newlines so
    offsets keep mapping to the same (line, column)."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | "line" | "block" | '"' | "'" | "raw"
    raw_delim = ""
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if ch == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
            elif ch == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
            elif ch == "R" and nxt == '"':
                m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
                if m:
                    mode = "raw"
                    raw_delim = ")" + m.group(1) + '"'
                    out.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                else:
                    out.append(ch)
                    i += 1
            elif ch in "\"'":
                mode = ch
                out.append(" ")
                i += 1
            else:
                out.append(ch)
                i += 1
        elif mode == "line":
            if ch == "\n":
                mode = None
                out.append(ch)
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if ch == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
            else:
                out.append(ch if ch == "\n" else " ")
                i += 1
        elif mode == "raw":
            if text.startswith(raw_delim, i):
                mode = None
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(ch if ch == "\n" else " ")
                i += 1
        else:  # "..." or '...'
            if ch == "\\":
                # A line-continuation backslash escapes a newline: keep the
                # newline so every later line maps to the same number.
                out.append(" " + ("\n" if nxt == "\n" else " "))
                i += 2
            elif ch == mode:
                mode = None
                out.append(" ")
                i += 1
            else:
                out.append(ch if ch == "\n" else " ")
                i += 1
    return "".join(out)


# --- tokens ------------------------------------------------------------------

@dataclass(frozen=True)
class Token:
    text: str
    line: int  # 0-based physical line of the token's first character

    def __repr__(self):  # pragma: no cover - debug aid
        return f"{self.text!r}@{self.line + 1}"


_TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"      # identifier / keyword
    r"|\d[\w.]*"                    # number (good enough)
    r"|::|->|\+\+|--|<<=|>>=|<<"    # multi-char operators we care about
    r"|\+=|-=|\*=|/=|%=|&=|\|=|\^=|==|!=|<=|>=|&&|\|\||\.\.\."
    r"|[{}()\[\];,<>*&=+\-/%!~^.|?:#]"
)


def tokenize(clean_text: str) -> list[Token]:
    tokens = []
    line = 0
    pos = 0
    for m in _TOKEN_RE.finditer(clean_text):
        line += clean_text.count("\n", pos, m.start())
        pos = m.start()
        tokens.append(Token(m.group(0), line))
    return tokens


# --- statements --------------------------------------------------------------

@dataclass
class Statement:
    """One logical statement: the tokens between `;` / `{` / `}` boundaries
    (the boundary token is included, so loop/struct headers end with `{`).
    `text` is the normalized single-line spelling used for regex rules;
    `depth` is the brace depth the statement *starts* at."""

    tokens: list[Token]
    depth: int
    text: str = ""
    # token-index -> offset of that token inside `text` (for line mapping)
    offsets: list[int] = field(default_factory=list)

    @property
    def first_line(self) -> int:
        return self.tokens[0].line

    @property
    def last_line(self) -> int:
        return self.tokens[-1].line

    def line_of_offset(self, off: int) -> int:
        """Physical line of the normalized-text offset `off` (for reporting
        matches found inside multi-line statements on the right line)."""
        best = self.tokens[0].line
        for tok, tok_off in zip(self.tokens, self.offsets):
            if tok_off <= off:
                best = tok.line
            else:
                break
        return best


_NO_SPACE_BEFORE = {"::", "(", ")", "[", "]", ",", ";", ".", "->", "<", ">"}
_NO_SPACE_AFTER = {"::", "(", "[", ".", "->", "<", "~", "!"}


def _normalize(tokens: list[Token]) -> tuple[str, list[int]]:
    """Join tokens into one line. `::`/`.`/`->`/`(`/template brackets join
    tightly so qualified names (`std::unordered_map<`) and calls
    (`make_unique<T>(`) regex-match their conventional spelling."""
    parts: list[str] = []
    offsets: list[int] = []
    off = 0
    prev = None
    for tok in tokens:
        sep = ""
        if prev is not None:
            sep = " "
            if tok.text in _NO_SPACE_BEFORE or prev in _NO_SPACE_AFTER:
                sep = ""
        if sep:
            parts.append(sep)
            off += 1
        offsets.append(off)
        parts.append(tok.text)
        off += len(tok.text)
        prev = tok.text
    return "".join(parts), offsets


# --- structural model --------------------------------------------------------

@dataclass
class Loop:
    """One `for`/`while` loop with a braced body."""
    header_first_line: int   # line of the `for`/`while` keyword
    header_last_line: int    # line of the body-opening `{`
    body_first_line: int
    body_last_line: int
    is_range_for: bool = False
    range_text: str = ""     # normalized range expression (range-for only)


@dataclass
class StructDef:
    """One `struct`/`class` definition with a body."""
    name: str
    header_line: int
    body_first_line: int
    body_last_line: int
    # member-declaration statements at the struct's own depth
    members: list[Statement] = field(default_factory=list)
    body_statements: list[Statement] = field(default_factory=list)


@dataclass
class FileModel:
    path: str                      # repo-relative posix path
    raw_lines: list[str]
    clean_lines: list[str]
    tokens: list[Token]
    statements: list[Statement]
    loops: list[Loop]
    structs: list[StructDef]

    def loops_containing(self, line: int) -> list[Loop]:
        return [lp for lp in self.loops
                if lp.body_first_line <= line <= lp.body_last_line]

    def in_loop_body(self, line: int) -> bool:
        return any(True for _ in self.loops_containing(line))


def _match_paren(tokens: list[Token], i: int) -> int:
    """Index of the `)` matching the `(` at index i, or len(tokens)."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def _match_brace(tokens: list[Token], i: int) -> int:
    """Index of the `}` matching the `{` at index i, or len(tokens) - 1."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(tokens) - 1


def _split_statements(tokens: list[Token]) -> list[Statement]:
    stmts: list[Statement] = []
    cur: list[Token] = []
    depth = 0
    for tok in tokens:
        cur.append(tok)
        if tok.text in (";", "{", "}"):
            start_depth = depth
            if tok.text == "{":
                depth += 1
            elif tok.text == "}":
                depth = max(0, depth - 1)
                start_depth = depth
            text, offsets = _normalize(cur)
            stmts.append(Statement(cur, start_depth, text, offsets))
            cur = []
    if cur:
        text, offsets = _normalize(cur)
        stmts.append(Statement(cur, depth, text, offsets))
    return stmts


_LOOP_KEYWORDS = {"for", "while"}
_STRUCT_KEYWORDS = {"struct", "class"}


def _find_loops(tokens: list[Token]) -> list[Loop]:
    loops: list[Loop] = []
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.text in _LOOP_KEYWORDS and i + 1 < n and \
                tokens[i + 1].text == "(":
            # `while` of a do-while has no body after the `)`; handled below
            # because the next token will not be `{`.
            close = _match_paren(tokens, i + 1)
            is_range = False
            range_text = ""
            if tok.text == "for":
                # range-for: a `:` at paren depth 1 outside template args
                depth = 0
                tmpl = 0
                for j in range(i + 1, close):
                    t = tokens[j].text
                    if t == "(":
                        depth += 1
                    elif t == ")":
                        depth -= 1
                    elif t == "<":
                        tmpl += 1
                    elif t == ">":
                        tmpl = max(0, tmpl - 1)
                    elif t == ":" and depth == 1 and tmpl == 0 and \
                            (j + 1 >= n or tokens[j + 1].text != ":") and \
                            tokens[j - 1].text != ":":
                        is_range = True
                        range_text, _ = _normalize(tokens[j + 1:close])
                        break
            body_open = close + 1
            if body_open < n and tokens[body_open].text == "{":
                body_close = _match_brace(tokens, body_open)
                loops.append(Loop(
                    header_first_line=tok.line,
                    header_last_line=tokens[body_open].line,
                    body_first_line=tokens[body_open].line,
                    body_last_line=tokens[body_close].line,
                    is_range_for=is_range,
                    range_text=range_text,
                ))
            else:
                # Braceless single-statement body: the body is not tracked
                # (same contract as the old scanner), but the header still
                # is -- a braceless range-for over a hash-ordered container
                # must not escape nondet-iteration. body range is empty.
                loops.append(Loop(
                    header_first_line=tok.line,
                    header_last_line=tokens[close].line
                    if close < n else tok.line,
                    body_first_line=-1,
                    body_last_line=-2,
                    is_range_for=is_range,
                    range_text=range_text,
                ))
            i = close + 1
            continue
        i += 1
    return loops


def _find_structs(tokens: list[Token], statements: list[Statement]) \
        -> list[StructDef]:
    structs: list[StructDef] = []
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.text not in _STRUCT_KEYWORDS:
            continue
        # `struct Name ... {` -- skip forward declarations (`struct Name;`)
        # and `enum struct`/`enum class` (previous token is `enum`).
        if i > 0 and tokens[i - 1].text == "enum":
            continue
        if i + 1 >= n or not re.match(r"[A-Za-z_]", tokens[i + 1].text):
            continue
        name = tokens[i + 1].text
        j = i + 2
        # skip `final`, base clause, attributes, up to `{` or `;`
        while j < n and tokens[j].text not in ("{", ";", "("):
            j += 1
        if j >= n or tokens[j].text != "{":
            continue
        body_close = _match_brace(tokens, j)
        sd = StructDef(
            name=name,
            header_line=tok.line,
            body_first_line=tokens[j].line,
            body_last_line=tokens[body_close].line,
        )
        body_start_line = tokens[j].line
        body_end_line = tokens[body_close].line
        for st in statements:
            if st.first_line < body_start_line or \
                    st.last_line > body_end_line:
                continue
            sd.body_statements.append(st)
            if st.tokens[-1].text == ";" and _looks_like_member(st):
                sd.members.append(st)
        structs.append(sd)
    return structs


def _looks_like_member(st: Statement) -> bool:
    """Heuristic: a data-member declaration (not a function declaration,
    using-alias, friend, static member, or access label)."""
    first = st.tokens[0].text
    if first in ("using", "typedef", "friend", "static", "public", "private",
                 "protected", "template", "return", "if", "else", "case",
                 "break", "continue", "throw", "delete", "do", "goto",
                 "switch", "default", "operator", "explicit", "virtual",
                 "enum", "struct", "class", "namespace", "#"):
        return False
    text = st.text
    if "operator" in text or "= default" in text or "= delete" in text:
        return False
    # A function declaration has a parameter list before any initializer:
    # `Type name(args);` / `Type name(args) const;`. A member with a
    # parenthesized initializer (`int x(0);`) is vanishingly rare in this
    # codebase, so any top-level `(` before `=` or `{` marks a function.
    tmpl = 0
    for tok in st.tokens:
        t = tok.text
        if t == "<":
            tmpl += 1
        elif t == ">":
            tmpl = max(0, tmpl - 1)
        elif tmpl == 0:
            if t == "(":
                return False
            if t in ("=", "{"):
                return True
    return True


def build_model(path: str, text: str) -> FileModel:
    clean = strip_comments_and_strings(text)
    tokens = tokenize(clean)
    statements = _split_statements(tokens)
    loops = _find_loops(tokens)
    structs = _find_structs(tokens, statements)
    return FileModel(
        path=path,
        raw_lines=text.splitlines(),
        clean_lines=clean.splitlines(),
        tokens=tokens,
        statements=statements,
        loops=loops,
        structs=structs,
    )
