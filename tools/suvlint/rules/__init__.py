"""Rule registry: every rule class suvlint knows about."""

from rules.hotpath import LEGACY_RULES
from rules.determinism import DETERMINISM_RULES

ALL_RULES = LEGACY_RULES + DETERMINISM_RULES

LEGACY_RULE_IDS = tuple(r.id for r in LEGACY_RULES)
DETERMINISM_RULE_IDS = tuple(r.id for r in DETERMINISM_RULES)


def make_rules(only: set[str] | None = None):
    """Instantiate the registry, optionally restricted to rule ids."""
    rules = []
    for cls in ALL_RULES:
        if only is None or cls.id in only:
            rules.append(cls())
    return rules
