"""Determinism rules: guard the bit-identity contract.

Every published result rests on RunResult / obs trace bytes / metrics
being bit-identical across --jobs, --sim-threads and scheme-equivalence
runs (DESIGN.md sections 8, 11, 14). These rules make the hazards that
could silently break that contract visible at lint time:

  nondet-iteration    iterating a hash-ordered container (FlatMap /
                      FlatSet / std::unordered_*) in a result-affecting
                      directory. Hash order is deterministic for a fixed
                      insertion history but is NOT part of any contract:
                      a capacity-policy or hash-mix change silently
                      reorders everything downstream. Drain through a
                      sort, or annotate why order cannot reach a result.
  pointer-keyed-order  container keyed by a raw pointer: iteration and
                      comparison order then depend on allocator layout,
                      the canonical non-reproducibility bug.
  wallclock-entropy   wall-clock, libc randomness or environment reads
                      inside the simulated world. Entropy may only enter
                      through runner/ (host-side measurement) and
                      common/rng (seeded).
  uninit-member       uninitialized scalar member in a struct whose bytes
                      are hashed, memcmp'd or value-compared into
                      traces/results; padding-and-garbage bytes make
                      equality and hashing runs-dependent.
  float-accum-order   floating-point accumulation on the PDES-merge /
                      metrics-flatten paths, where reduction order is a
                      function of shard count unless pinned; FP addition
                      does not commute in the bits.
"""

from __future__ import annotations

import re

from engine import Rule

# Result-affecting trees: everything a simulated event, checker verdict,
# trace byte or metrics value flows through.
DET_DIRS = ("src/sim", "src/htm", "src/suv", "src/mem", "src/obs",
            "src/check", "src/stamp")

_LAST_IDENT_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\([^()]*\)|\[[^\[\]]*\])?\s*$")
_BEGIN_RE = re.compile(r"\b([A-Za-z_]\w*)\.(?:begin|cbegin)\(\)")
_FOR_EACH_RE = re.compile(r"\b(?:std::)?for_each\s*\(")


class NondetIterationRule(Rule):
    id = "nondet-iteration"
    severity = "error"
    doc = ("iteration over a hash-ordered container in a result-affecting "
           "directory without an ordered-drain annotation")
    dirs = DET_DIRS

    def check(self, model, ctx):
        # Range-for over a known hash-ordered variable / member / accessor.
        for lp in model.loops:
            if not lp.is_range_for:
                continue
            m = _LAST_IDENT_RE.search(lp.range_text)
            if not m:
                continue
            why = ctx.nondet_why(model.path, m.group(1))
            if why:
                yield (lp.header_first_line,
                       f"range-for over `{m.group(1)}` ({why}) iterates in "
                       "hash order; sort into a canonical order before "
                       "anything result-affecting consumes it, or annotate "
                       "with // lint: allow(nondet-iteration): <why safe>",
                       None)
        # Iterator-based loops and std::for_each over the same symbols.
        for st in model.statements:
            is_loop_stmt = st.text.startswith(("for(", "while(")) or \
                " for(" in st.text or " while(" in st.text
            if not (is_loop_stmt or _FOR_EACH_RE.search(st.text)):
                continue
            for m in _BEGIN_RE.finditer(st.text):
                why = ctx.nondet_why(model.path, m.group(1))
                if why:
                    yield (st.line_of_offset(m.start()),
                           f"iteration via `{m.group(1)}.begin()` ({why}) "
                           "walks hash order; use a sorted drain or annotate "
                           "// lint: allow(nondet-iteration): <why safe>",
                           st)


_ORDERED_KEYED = re.compile(
    r"\b(FlatMap|FlatSet|std::(?:unordered_)?(?:map|set|multimap|multiset))"
    r"\s*<"
)


def _first_template_arg(text: str, open_idx: int) -> str:
    depth = 0
    start = open_idx + 1
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return text[start:i].strip()
        elif c == "," and depth == 1:
            return text[start:i].strip()
    return ""


class PointerKeyedOrderRule(Rule):
    id = "pointer-keyed-order"
    severity = "error"
    doc = ("container keyed by a raw pointer: ordering/iteration follows "
           "allocator layout, not simulated state")
    dirs = DET_DIRS

    def check(self, model, ctx):
        for st in model.statements:
            for m in _ORDERED_KEYED.finditer(st.text):
                arg = _first_template_arg(st.text, m.end() - 1)
                if arg.endswith("*") and not arg.endswith("**"):
                    base = arg.rstrip("* ").strip()
                    if base in ("char", "const char", "void", "const void"):
                        continue  # string-literal / blob keys, not objects
                    yield (st.line_of_offset(m.start()),
                           f"{m.group(1)} keyed by raw pointer `{arg}`; key "
                           "by a stable id (CoreId, LineAddr, index) instead",
                           st)
                if arg.endswith("**"):
                    yield (st.line_of_offset(m.start()),
                           f"{m.group(1)} keyed by raw pointer `{arg}`; key "
                           "by a stable id instead",
                           st)


_ENTROPY = re.compile(
    r"\bstd::chrono\b|\bsteady_clock\b|\bsystem_clock\b|"
    r"\bhigh_resolution_clock\b|\bstd::random_device\b|\brandom_device\b|"
    r"\btime\(|\bclock\(|\brand\(|\bsrand\(|\bgetenv\(|\bgettimeofday\(|"
    r"\bclock_gettime\("
)


class WallclockEntropyRule(Rule):
    id = "wallclock-entropy"
    severity = "error"
    doc = ("wall-clock / randomness / environment read inside the simulated "
           "world (entropy may only enter via runner/ and common/rng)")
    dirs = DET_DIRS

    def check(self, model, ctx):
        for st in model.statements:
            for m in _ENTROPY.finditer(st.text):
                yield (st.line_of_offset(m.start()),
                       f"`{m.group(0).rstrip('(')}` injects host entropy "
                       "into a result-affecting path; thread it through "
                       "runner/ or common/rng, or annotate "
                       "// lint: allow(wallclock-entropy): <why inert>",
                       st)


_SCALAR_TYPES = {
    "bool", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double", "size_t", "ptrdiff_t", "uintptr_t", "intptr_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    # Repo-local scalar aliases (common/types.hpp).
    "Cycle", "Addr", "LineAddr", "CoreId",
}


class UninitMemberRule(Rule):
    id = "uninit-member"
    severity = "warning"
    doc = ("scalar member without an initializer in a struct whose bytes "
           "are hashed, memcmp'd or value-compared into traces/results")
    dirs = DET_DIRS

    def check(self, model, ctx):
        for sd in model.structs:
            if sd.name not in ctx.serialized_structs:
                continue
            for st in sd.members:
                finding = _uninit_scalar_member(st)
                if finding:
                    name, type_name = finding
                    yield (st.first_line,
                           f"member `{name}` ({type_name}) of "
                           f"value-compared struct `{sd.name}` has no "
                           "initializer; default it so padding/garbage "
                           "never reaches a comparison or hash",
                           st)


def _uninit_scalar_member(st) -> tuple[str, str] | None:
    toks = [t.text for t in st.tokens]
    if toks and toks[-1] == ";":
        toks = toks[:-1]
    # Walk at template depth 0 only: the member's own type is the outer
    # spelling; template arguments (`std::pair<std::string, double>`) must
    # not leak into the scalar test.
    tmpl = 0
    idents: list[str] = []
    has_ptr = False
    for t in toks:
        if t == "<":
            tmpl += 1
        elif t == ">":
            tmpl = max(0, tmpl - 1)
        elif tmpl == 0:
            if t in ("=", "{"):
                return None  # initialized
            if t == "*":
                has_ptr = True
            elif re.match(r"[A-Za-z_]\w*$", t):
                idents.append(t)
    if len(idents) < 2:
        return None
    name = idents[-1]
    type_idents = idents[:-1]
    quals = {"const", "mutable", "volatile", "unsigned", "signed", "std"}
    core_candidates = [t for t in type_idents if t not in quals]
    type_core = core_candidates[-1] if core_candidates else type_idents[-1]
    if has_ptr or type_core in _SCALAR_TYPES:
        return name, " ".join(type_idents) + (" *" if has_ptr else "")
    return None


_FLOAT_ACCUM = re.compile(r"\b([A-Za-z_]\w*)\s*\+=")
_FLOAT_REDUCE = re.compile(r"\bstd::(?:accumulate|reduce)\(")
_FLOAT_LITERAL = re.compile(r"\b\d+\.\d*f?\b")
_RMW_SET_GET = re.compile(r"\.set\(.*\.get\(.*\+")


class FloatAccumOrderRule(Rule):
    id = "float-accum-order"
    severity = "warning"
    doc = ("floating-point accumulation on a merge/flatten path where "
           "reduction order can vary with shard count; FP addition does "
           "not commute in the bits")
    # The PDES completion-merge and metrics-flatten surfaces: the places a
    # per-shard or per-run reduction becomes one result value.
    files = ("src/obs/metrics.cpp", "src/obs/metrics.hpp",
             "src/sim/simulator.cpp", "src/sim/shard.cpp",
             "src/runner/cli.cpp", "src/runner/bench_report.cpp")

    def check(self, model, ctx):
        floats = ctx.float_symbols.get(model.path, {})
        for st in model.statements:
            for m in _FLOAT_ACCUM.finditer(st.text):
                if floats.get(m.group(1)):
                    yield (st.line_of_offset(m.start()),
                           f"`{m.group(1)} +=` accumulates "
                           f"{floats[m.group(1)]} on a merge "
                           "path; pin the reduction order (canonical "
                           "domain/submission order) or sum in integers, "
                           "then annotate "
                           "// lint: allow(float-accum-order): <order pin>",
                           st)
            for m in _FLOAT_REDUCE.finditer(st.text):
                if _FLOAT_LITERAL.search(st.text[m.end():]):
                    yield (st.line_of_offset(m.start()),
                           "floating-point std::accumulate/reduce on a "
                           "merge path; reduction order must be pinned "
                           "(annotate // lint: allow(float-accum-order))",
                           st)
            m = _RMW_SET_GET.search(st.text)
            if m:
                yield (st.line_of_offset(m.start()),
                       "read-modify-write accumulation of a double scalar "
                       "(.set(name, .get(name) + v)); bitwise result "
                       "depends on merge call order -- pin it to canonical "
                       "domain/submission order and annotate "
                       "// lint: allow(float-accum-order): <order pin>",
                       st)


DETERMINISM_RULES = (NondetIterationRule, PointerKeyedOrderRule,
                     WallclockEntropyRule, UninitMemberRule,
                     FloatAccumOrderRule)
