"""Legacy hot-path rules, ported from tools/lint_hotpath.py onto the
statement engine. Semantics are the old scanner's, with its two known
gaps fixed by the engine itself:

  * matching runs over normalized logical statements, so a call split
    across physical lines (`std::make_unique\n    <Foo>(...)`) no longer
    slips through;
  * `// lint: allow(<rule>)` placed on (or directly above) the header of
    the enclosing loop suppresses loop-scoped findings in its body.
"""

from __future__ import annotations

import re

from engine import Rule

# src/check joined the hot set when its recording path went arena-based:
# the SUVTM_CHECK hooks sit on every simulated memory access, so the same
# no-node-containers / no-allocation-in-loop / no-std::function discipline
# applies there as in the simulator core.
HOT_DIRS = ("src/mem", "src/sim", "src/htm", "src/suv", "src/check")

_NODE_CONTAINERS = re.compile(
    r"\bstd::(map|set|unordered_map|unordered_set|list|forward_list|"
    r"multimap|multiset)\s*<"
)
_STD_FUNCTION = re.compile(r"\bstd::function\s*<")
# `new(buf) T` is placement new (normalization puts no space before `(`);
# a real allocation names the allocated type directly after `new`.
_ALLOCATION = re.compile(
    r"\bnew\s+[A-Za-z_:<]|\bstd::make_unique<|\bstd::make_shared<|"
    r"\bmalloc\(|\bcalloc\("
)
_GROWTH = re.compile(r"\.(push_back|emplace_back|resize|reserve)\(")
_SYNC = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|atomic\b|atomic<|"
    r"condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock|"
    r"counting_semaphore|binary_semaphore|latch)|"
    r"\.(lock|try_lock|unlock|wait|notify_one|notify_all|"
    r"arrive_and_wait|arrive_and_drop|fetch_add|fetch_sub|fetch_or|"
    r"fetch_and|fetch_xor|compare_exchange_weak|compare_exchange_strong)\("
)


class _StatementRegexRule(Rule):
    """Flag every match of `pattern` in a statement's normalized text,
    optionally only when the match sits inside a loop body."""

    pattern: re.Pattern = None
    in_loop_only = False

    def check(self, model, ctx):
        for st in model.statements:
            for m in self.pattern.finditer(st.text):
                line = st.line_of_offset(m.start())
                if self.in_loop_only and not model.in_loop_body(line):
                    continue
                yield line, self.message(m), st

    def message(self, m: re.Match) -> str:
        raise NotImplementedError


class NodeContainerRule(_StatementRegexRule):
    id = "node-container"
    severity = "error"
    doc = ("node-based std container on a hot path "
           "(use common/flat_hash.hpp)")
    dirs = HOT_DIRS
    pattern = _NODE_CONTAINERS

    def message(self, m):
        return self.doc


class StdFunctionRule(_StatementRegexRule):
    id = "std-function"
    severity = "error"
    doc = ("std::function on a hot path "
           "(use a template parameter or sim::SmallFn)")
    dirs = HOT_DIRS
    pattern = _STD_FUNCTION

    def message(self, m):
        return self.doc


class AllocInLoopRule(_StatementRegexRule):
    id = "alloc-in-loop"
    severity = "error"
    doc = "allocation inside a loop on a hot path"
    dirs = HOT_DIRS
    pattern = _ALLOCATION
    in_loop_only = True

    def message(self, m):
        return self.doc


class GrowthInLoopRule(_StatementRegexRule):
    id = "growth-in-loop"
    severity = "error"
    doc = ("container growth inside a scheduler loop (must be amortized "
           "and annotated: // lint: allow(growth-in-loop))")
    files = ("src/sim/scheduler.hpp", "src/sim/scheduler.cpp")
    pattern = _GROWTH
    in_loop_only = True

    def message(self, m):
        return self.doc


class SyncInDrainRule(_StatementRegexRule):
    id = "sync-in-drain"
    severity = "error"
    doc = ("lock/atomic inside a PDES window or drain loop (the design is "
           "share-nothing; annotate the one intended barrier with "
           "// lint: allow(sync-in-drain))")
    files = ("src/sim/shard.hpp", "src/sim/shard.cpp")
    pattern = _SYNC
    in_loop_only = True

    def message(self, m):
        return self.doc


LEGACY_RULES = (NodeContainerRule, StdFunctionRule, AllocInLoopRule,
                GrowthInLoopRule, SyncInDrainRule)
