"""Minimal SARIF 2.1.0 writer for suvlint findings (CI artifact upload
and code-scanning ingestion)."""

from __future__ import annotations

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVEL = {"error": "error", "warning": "warning", "note": "note"}


def to_sarif(findings, rules, tool_version: str) -> dict:
    rule_index = {}
    rule_descs = []
    for i, r in enumerate(rules):
        rule_index[r.id] = i
        rule_descs.append({
            "id": r.id,
            "shortDescription": {"text": r.doc},
            "defaultConfiguration": {"level": _LEVEL[r.severity]},
        })
    results = []
    for f in findings:
        res = {
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": _LEVEL[f.severity],
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": f.line},
                }
            }],
        }
        if f.suppressed:
            res["suppressions"] = [{
                "kind": "inSource" if f.suppressed == "allow" else "external",
                "justification": f.suppressed,
            }]
        results.append(res)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "suvlint",
                "version": tool_version,
                "informationUri":
                    "DESIGN.md section 15 (static analysis)",
                "rules": rule_descs,
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }


def write_sarif(path, findings, rules, tool_version: str) -> None:
    with open(path, "w") as fh:
        json.dump(to_sarif(findings, rules, tool_version), fh, indent=2)
        fh.write("\n")
