// Fixture: alloc-in-loop must fire on an allocation inside a loop body.
#include <memory>

void warm(int n) {
  for (int i = 0; i < n; ++i) {
    auto p = std::make_unique<int>(i);
    (void)p;
  }
}
