// Fixture twin: annotation on the loop header covers the body (the old
// scanner silently ignored this placement).
#include <memory>

void warm(int n) {
  // lint: allow(alloc-in-loop): one-time pool warm-up, bounded by config
  for (int i = 0; i < n; ++i) {
    auto p = std::make_unique<int>(i);
    (void)p;
  }
}
