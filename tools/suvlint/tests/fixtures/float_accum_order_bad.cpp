// Fixture: float-accum-order must fire on floating-point accumulation on
// a merge/flatten path (harness places this at src/obs/metrics.cpp).
#include <vector>

double flatten(const std::vector<double>& shard_totals) {
  double total = 0.0;
  for (double v : shard_totals) total += v;
  return total;
}
