// Fixture twin: the reduction order is pinned by the caller, annotated.
#include <vector>

double flatten(const std::vector<double>& shard_totals) {
  double total = 0.0;
  // lint: allow(float-accum-order): shard_totals arrives in ascending
  // shard index order, so the reduction order is canonical
  for (double v : shard_totals) total += v;
  return total;
}
