// Fixture: growth-in-loop must fire on container growth inside a loop in
// the scheduler files (harness places this at src/sim/scheduler.cpp).
#include <vector>

void drain(std::vector<int>& ready, int n) {
  for (int i = 0; i < n; ++i) {
    ready.push_back(i);
  }
}
