// Fixture twin: growth annotated as amortized.
#include <vector>

void drain(std::vector<int>& ready, int n) {
  for (int i = 0; i < n; ++i) {
    // lint: allow(growth-in-loop): amortized, capacity reserved at setup
    ready.push_back(i);
  }
}
