// Fixture: node-container must fire on a node-based std container in a
// hot-path directory.
#include <map>

struct Tracker {
  std::map<int, int> by_line_;  // node-based, pointer-chasing
};
