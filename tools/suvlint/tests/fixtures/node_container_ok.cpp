// Fixture twin: the same container, annotated.
#include <map>

struct Tracker {
  // lint: allow(node-container): cold path, built once at config load
  std::map<int, int> by_line_;
};
