// Fixture: nondet-iteration must fire on a range-for over a hash-ordered
// container in a result-affecting directory.
#include "common/flat_hash.hpp"

struct Sweep {
  FlatMap<unsigned long long, int> lines_;

  int tally() const {
    int n = 0;
    for (const auto& kv : lines_) n += kv.second;
    return n;
  }
};
