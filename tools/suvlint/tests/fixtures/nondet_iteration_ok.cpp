// Fixture twin: the ordered-drain idiom -- collect, sort, consume -- with
// the collection loop annotated.
#include <algorithm>
#include <vector>

#include "common/flat_hash.hpp"

struct Sweep {
  FlatMap<unsigned long long, int> lines_;

  int tally() const {
    std::vector<unsigned long long> keys;
    keys.reserve(lines_.size());
    // lint: allow(nondet-iteration): order laundered by the sort below
    for (const auto& kv : lines_) keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    int n = 0;
    for (unsigned long long k : keys) n += lines_.find(k)->second;
    return n;
  }
};
