// Fixture: pointer-keyed-order must fire on a container keyed by a raw
// pointer (iteration/comparison order then follows allocator layout).
#include "common/flat_hash.hpp"

struct Txn;

struct Registry {
  FlatMap<Txn*, int> priority_;
};
