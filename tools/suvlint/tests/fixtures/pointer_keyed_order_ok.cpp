// Fixture twin: keyed by a stable id instead of an address.
#include <cstdint>

#include "common/flat_hash.hpp"

struct Registry {
  FlatMap<std::uint32_t, int> priority_;  // keyed by core id
};
