// Fixture: std-function must fire on a hot path, including when the
// declaration is split across physical lines (the old scanner's gap).
#include <functional>

struct Hooks {
  std::function
      <void(int)> on_commit_;
};
