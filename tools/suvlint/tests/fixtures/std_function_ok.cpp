// Fixture twin: the same declaration, annotated.
#include <functional>

struct Hooks {
  // lint: allow(std-function): installed once at setup, never invoked
  // per simulated event
  std::function
      <void(int)> on_commit_;
};
