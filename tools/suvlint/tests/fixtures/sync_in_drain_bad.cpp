// Fixture: sync-in-drain must fire on atomics inside a loop in the shard
// files (harness places this at src/sim/shard.cpp).
#include <atomic>

void drain(std::atomic<int>& pending, int n) {
  for (int i = 0; i < n; ++i) {
    pending.fetch_add(1);
  }
}
