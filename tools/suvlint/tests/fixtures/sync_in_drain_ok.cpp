// Fixture twin: the one intended synchronization point, annotated.
#include <atomic>

void drain(std::atomic<int>& pending, int n) {
  // lint: allow(sync-in-drain): the window barrier itself, once per window
  for (int i = 0; i < n; ++i) {
    pending.fetch_add(1);
  }
}
