// Fixture: uninit-member must fire on an uninitialized scalar member of a
// value-compared struct (defaulted operator== marks it as riding in
// results/trace comparisons).
#include <cstdint>

struct TouchRec {
  std::uint64_t line;
  std::uint32_t first_read = 0;

  bool operator==(const TouchRec&) const = default;
};
