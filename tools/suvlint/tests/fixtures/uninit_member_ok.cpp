// Fixture twin: every scalar member defaulted, so padding/garbage can
// never reach a comparison or hash.
#include <cstdint>

struct TouchRec {
  std::uint64_t line = 0;
  std::uint32_t first_read = 0;

  bool operator==(const TouchRec&) const = default;
};
