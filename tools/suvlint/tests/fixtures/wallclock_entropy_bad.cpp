// Fixture: wallclock-entropy must fire on host entropy entering the
// simulated world.
#include <cstdlib>
#include <ctime>

unsigned seed_from_host() {
  return static_cast<unsigned>(time(nullptr));
}
