// Fixture twin: a deliberate, inert host read, annotated.
#include <cstdlib>
#include <ctime>

unsigned seed_from_host() {
  // lint: allow(wallclock-entropy): debug-only banner timestamp; value
  // never reaches simulated state or results
  return static_cast<unsigned>(time(nullptr));
}
