"""Engine-level tests for suvlint.

These pin the two behaviours the old regex scanner got wrong (multi-line
statements slipping through; `// lint: allow()` above a brace-opening
loop header silently ignored) plus the load-bearing engine mechanics:
comment/string stripping, suppression placement, and the baseline.

Run: python3 tools/suvlint/tests/test_engine.py
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from engine import Engine  # noqa: E402
from rules import make_rules  # noqa: E402


def run_on(source: str, dest: str = "src/sim/fixture.cpp",
           only: set[str] | None = None, baseline: dict | None = None,
           extra: dict[str, str] | None = None):
    """Run the engine over a temp tree (one file, plus `extra`
    path -> text siblings); return (findings, engine)."""
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        for rel, text in {dest: source, **(extra or {})}.items():
            f = root / rel
            f.parent.mkdir(parents=True, exist_ok=True)
            f.write_text(text)
        baseline_path = None
        if baseline is not None:
            baseline_path = root / "baseline.json"
            baseline_path.write_text(json.dumps(baseline))
        eng = Engine(root, make_rules(only), ["src"], baseline_path)
        return eng.run(), eng


def active(findings):
    return [f for f in findings if not f.suppressed]


def rules_hit(findings):
    return sorted({f.rule for f in active(findings)})


# --- the two legacy scanner gaps ---------------------------------------------

def test_multiline_statement_matches():
    # Old scanner: line-based regexes missed a call split across lines.
    src = (
        "void f() {\n"
        "  std::function\n"
        "      <void(int)> cb;\n"
        "  for (int i = 0; i < 4; ++i) {\n"
        "    auto p = std::make_unique\n"
        "        <int>(i);\n"
        "  }\n"
        "}\n"
    )
    findings, _ = run_on(src)
    assert "std-function" in rules_hit(findings), rules_hit(findings)
    assert "alloc-in-loop" in rules_hit(findings), rules_hit(findings)
    # The allocation finding lands inside the loop body, where the
    # statement starts, not on the closing line.
    alloc = [f for f in findings if f.rule == "alloc-in-loop"][0]
    assert alloc.line == 5, alloc.line


def test_allow_above_loop_header_suppresses_body_finding():
    # Old scanner: annotating the loop header did nothing because the
    # finding line was inside the body.
    src = (
        "void f() {\n"
        "  // lint: allow(alloc-in-loop): pool warm-up, bounded\n"
        "  for (int i = 0; i < 4; ++i) {\n"
        "    auto p = std::make_unique<int>(i);\n"
        "  }\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"alloc-in-loop"})
    assert not active(findings), [f.render() for f in active(findings)]
    assert any(f.suppressed == "allow" for f in findings)


def test_allow_on_multiline_loop_header_line():
    src = (
        "void f() {\n"
        "  for (int i = 0;\n"
        "       i < 4; ++i) {  // lint: allow(alloc-in-loop)\n"
        "    auto p = std::make_unique<int>(i);\n"
        "  }\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"alloc-in-loop"})
    assert not active(findings), [f.render() for f in active(findings)]


# --- suppression placement ---------------------------------------------------

def test_allow_in_comment_block_above():
    # A multi-line rationale keeps the allow() effective even when it sits
    # several comment lines above the finding.
    src = (
        "void f() {\n"
        "  // lint: allow(std-function): stored once at setup, never\n"
        "  // invoked per simulated event; see DESIGN.md section 15\n"
        "  std::function<void()> cb;\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"std-function"})
    assert not active(findings), [f.render() for f in active(findings)]


def test_allow_wrong_rule_does_not_suppress():
    src = (
        "void f() {\n"
        "  // lint: allow(alloc-in-loop)\n"
        "  std::function<void()> cb;\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"std-function"})
    assert len(active(findings)) == 1


def test_allow_separated_by_code_does_not_suppress():
    # The comment block must be contiguous and directly above.
    src = (
        "void f() {\n"
        "  // lint: allow(std-function)\n"
        "  int x = 0;\n"
        "  std::function<void()> cb;\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"std-function"})
    assert len(active(findings)) == 1


# --- lexing ------------------------------------------------------------------

def test_comments_and_strings_do_not_match():
    src = (
        "void f() {\n"
        "  // std::function<void()> in a comment\n"
        "  /* std::map<int,int> in a block comment */\n"
        "  const char* s = \"std::function<void()>\";\n"
        "  const char* r = R\"(std::map<int,int>)\";\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"std-function", "node-container"})
    assert not findings, [f.render() for f in findings]


def test_braceless_range_for_is_flagged():
    src = (
        "#include \"common/flat_hash.hpp\"\n"
        "FlatMap<int, int> m_;\n"
        "int f() {\n"
        "  int n = 0;\n"
        "  for (const auto& kv : m_) n += kv.second;\n"
        "  return n;\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"nondet-iteration"})
    assert len(active(findings)) == 1, [f.render() for f in findings]
    assert active(findings)[0].line == 5


def test_iterator_loop_is_flagged():
    src = (
        "#include \"common/flat_hash.hpp\"\n"
        "FlatMap<int, int> m_;\n"
        "int f() {\n"
        "  int n = 0;\n"
        "  for (auto it = m_.begin(); it != m_.end(); ++it) n += it->second;\n"
        "  return n;\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"nondet-iteration"})
    assert len(active(findings)) == 1, [f.render() for f in findings]


def test_sorted_drain_pattern_with_allow_is_clean():
    src = (
        "#include \"common/flat_hash.hpp\"\n"
        "FlatMap<int, int> m_;\n"
        "void f(std::vector<int>& keys) {\n"
        "  // lint: allow(nondet-iteration): order laundered by the sort below\n"
        "  for (const auto& kv : m_) keys.push_back(kv.first);\n"
        "  std::sort(keys.begin(), keys.end());\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"nondet-iteration"})
    assert not active(findings), [f.render() for f in active(findings)]


def test_string_line_continuation_keeps_line_numbers():
    # A backslash-newline inside a string literal must not swallow the
    # newline, or every later line number shifts and allow() lookup breaks.
    from lexer import strip_comments_and_strings
    src = 'const char* s = "ab\\\ncd";\nint x;\n'
    clean = strip_comments_and_strings(src)
    assert clean.count("\n") == src.count("\n"), clean
    # End-to-end: the finding after the continuation still lands on its
    # own line, so the allow() directly above it suppresses.
    src = (
        'const char* banner =\n'
        '    "line one \\\n'
        '     line two";\n'
        "void f() {\n"
        "  // lint: allow(std-function): stored once\n"
        "  std::function<void()> cb;\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"std-function"})
    assert not active(findings), [f.render() for f in active(findings)]


# --- nondet symbol scoping ---------------------------------------------------

_OTHER_FILE_MEMBER = (
    "#include \"common/flat_hash.hpp\"\n"
    "struct Table {\n"
    "  FlatMap<int, int> entries_;\n"
    "};\n"
)


def test_nondet_member_in_unrelated_file_does_not_taint():
    # A FlatMap member named `entries_` elsewhere must not flag an
    # unrelated std::vector that happens to share the name.
    src = (
        "#include <vector>\n"
        "std::vector<int> entries_;\n"
        "int f() {\n"
        "  int n = 0;\n"
        "  for (int v : entries_) n += v;\n"
        "  return n;\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"nondet-iteration"},
                         extra={"src/htm/table.hpp": _OTHER_FILE_MEMBER})
    assert not findings, [f.render() for f in findings]


def test_nondet_member_in_sibling_header_is_flagged():
    # Members live in foo.hpp, the iterating code in foo.cpp: the sibling
    # header's symbols stay visible.
    src = (
        "#include \"fixture.hpp\"\n"
        "int f(Table& t) {\n"
        "  int n = 0;\n"
        "  for (const auto& kv : t.entries_) n += kv.second;\n"
        "  return n;\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"nondet-iteration"},
                         extra={"src/sim/fixture.hpp": _OTHER_FILE_MEMBER})
    assert len(active(findings)) == 1, [f.render() for f in findings]


def test_nondet_accessor_is_flagged_cross_file():
    # Accessor functions returning hash-ordered containers are global:
    # the call site can be in any file.
    accessor = (
        "#include \"common/flat_hash.hpp\"\n"
        "struct Table {\n"
        "  const FlatMap<int, int>& entries() const { return entries_; }\n"
        "  FlatMap<int, int> entries_;\n"
        "};\n"
    )
    src = (
        "#include \"htm/table.hpp\"\n"
        "int f(Table& t) {\n"
        "  int n = 0;\n"
        "  for (const auto& kv : t.entries()) n += kv.second;\n"
        "  return n;\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"nondet-iteration"},
                         extra={"src/htm/table.hpp": accessor})
    assert len(active(findings)) == 1, [f.render() for f in findings]


# --- cli ---------------------------------------------------------------------

def test_write_baseline_with_baseline_none_is_rejected():
    import cli
    rc = cli.main(["--baseline", "none", "--write-baseline"])
    assert rc == 2, rc


# --- baseline ----------------------------------------------------------------

def test_baseline_suppresses_and_reports_stale():
    src = (
        "void f() {\n"
        "  std::function<void()> cb;\n"
        "}\n"
    )
    # First run with no baseline to learn the finding's context key.
    findings, _ = run_on(src, only={"std-function"})
    assert len(active(findings)) == 1
    ctx = findings[0].context
    baseline = {"findings": [
        {"rule": "std-function", "path": "src/sim/fixture.cpp",
         "context": ctx, "count": 1},
        {"rule": "std-function", "path": "src/sim/gone.cpp",
         "context": "std::function<void()> old;", "count": 1},
    ]}
    findings, eng = run_on(src, only={"std-function"}, baseline=baseline)
    assert not active(findings)
    assert findings[0].suppressed == "baseline"
    assert len(eng.stale_baseline) == 1
    assert eng.stale_baseline[0]["path"] == "src/sim/gone.cpp"


def test_baseline_count_budget():
    # Two identical statements, baseline budget of one: one suppressed,
    # one active.
    src = (
        "void f() {\n"
        "  std::function<void()> cb;\n"
        "}\n"
        "void g() {\n"
        "  std::function<void()> cb;\n"
        "}\n"
    )
    findings, _ = run_on(src, only={"std-function"})
    assert len(active(findings)) == 2
    ctx = findings[0].context
    baseline = {"findings": [
        {"rule": "std-function", "path": "src/sim/fixture.cpp",
         "context": ctx, "count": 1},
    ]}
    findings, _ = run_on(src, only={"std-function"}, baseline=baseline)
    assert len(active(findings)) == 1


# --- scoping -----------------------------------------------------------------

def test_rule_scoping_by_dir_and_file():
    src = "std::function<void()> cb;\n"
    # runner/ is outside every hot/determinism dir.
    findings, _ = run_on(src, dest="src/runner/fixture.cpp",
                         only={"std-function"})
    assert not findings
    # growth-in-loop only applies to the scheduler files.
    grow = (
        "void f(std::vector<int>& v) {\n"
        "  for (int i = 0; i < 4; ++i) {\n"
        "    v.push_back(i);\n"
        "  }\n"
        "}\n"
    )
    findings, _ = run_on(grow, dest="src/sim/fixture.cpp",
                         only={"growth-in-loop"})
    assert not findings
    findings, _ = run_on(grow, dest="src/sim/scheduler.cpp",
                         only={"growth-in-loop"})
    assert len(active(findings)) == 1


def main() -> int:
    tests = [(n, f) for n, f in sorted(globals().items())
             if n.startswith("test_") and callable(f)]
    failed = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as e:
            failed += 1
            print(f"FAIL {name}: {e}")
    print(f"{len(tests) - failed}/{len(tests)} engine tests passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
