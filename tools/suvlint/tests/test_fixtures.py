"""Negative-fixture suite: every rule has one triggering fixture and one
annotated (or corrected) twin.

Each `<rule>_bad.cpp` must produce at least one active finding of exactly
that rule and no active finding of any other rule; each `<rule>_ok.cpp`
must be fully clean. Fixtures are placed at a path the rule actually
scans (file-scoped rules like growth-in-loop only apply to specific
files), one fixture per temp tree so harvested symbols never leak
between cases.

Run: python3 tools/suvlint/tests/test_fixtures.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from engine import Engine  # noqa: E402
from rules import ALL_RULES, make_rules  # noqa: E402

FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"

# rule id -> destination path inside the temp tree (a path the rule scans).
DEST = {
    "node-container": "src/sim/fixture.cpp",
    "std-function": "src/sim/fixture.cpp",
    "alloc-in-loop": "src/sim/fixture.cpp",
    "growth-in-loop": "src/sim/scheduler.cpp",
    "sync-in-drain": "src/sim/shard.cpp",
    "nondet-iteration": "src/sim/fixture.cpp",
    "pointer-keyed-order": "src/sim/fixture.cpp",
    "wallclock-entropy": "src/sim/fixture.cpp",
    "uninit-member": "src/sim/fixture.cpp",
    "float-accum-order": "src/obs/metrics.cpp",
}


def run_fixture(fixture: Path, dest: str):
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        target = root / dest
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(fixture.read_text())
        eng = Engine(root, make_rules(None), ["src"], None)
        return [f for f in eng.run() if not f.suppressed]


def main() -> int:
    rule_ids = [cls.id for cls in ALL_RULES]
    missing_dest = [r for r in rule_ids if r not in DEST]
    assert not missing_dest, f"no fixture destination for: {missing_dest}"

    failed = 0
    for rule_id in rule_ids:
        slug = rule_id.replace("-", "_")
        bad = FIXTURE_DIR / f"{slug}_bad.cpp"
        ok = FIXTURE_DIR / f"{slug}_ok.cpp"
        for p in (bad, ok):
            if not p.exists():
                failed += 1
                print(f"FAIL {rule_id}: missing fixture {p.name}")
        if not (bad.exists() and ok.exists()):
            continue

        active = run_fixture(bad, DEST[rule_id])
        hits = [f for f in active if f.rule == rule_id]
        others = [f for f in active if f.rule != rule_id]
        if not hits:
            failed += 1
            print(f"FAIL {rule_id}: {bad.name} did not trigger the rule")
        elif others:
            failed += 1
            print(f"FAIL {rule_id}: {bad.name} cross-triggered "
                  f"{sorted({f.rule for f in others})}")
        else:
            print(f"PASS {rule_id}: {bad.name} -> {len(hits)} finding(s)")

        active = run_fixture(ok, DEST[rule_id])
        if active:
            failed += 1
            for f in active:
                print(f"  {f.render()}")
            print(f"FAIL {rule_id}: {ok.name} is not clean")
        else:
            print(f"PASS {rule_id}: {ok.name} clean")

    total = 2 * len(rule_ids)
    print(f"{total - failed}/{total} fixture checks passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
