#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file produced by the obs exporter.

Checks the structural contract ui.perfetto.dev / chrome://tracing rely on:
a top-level "traceEvents" list whose entries carry the phase-appropriate
keys, complete ("X") durations, process-name metadata for every pid used,
and monotone non-negative simulated timestamps. Exits non-zero with a
per-violation message, so CI can gate on any exporter regression.

Usage: validate_trace.py TRACE.json [--min-events N]
"""
import argparse
import json
import sys

REQUIRED_COMMON = ("ph", "pid", "tid", "name", "ts")
KNOWN_PHASES = {"X", "i", "M"}


def fail(msgs):
    for m in msgs:
        print(f"validate_trace: {m}", file=sys.stderr)
    return 1


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum number of non-metadata events expected")
    args = ap.parse_args()

    try:
        with open(args.trace, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail([f"cannot load {args.trace}: {e}"])

    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(["top-level 'traceEvents' list missing"])

    named_pids = set()
    used_pids = set()
    payload = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") == "process_name":
                named_pids.add(e.get("pid"))
            continue
        missing = [k for k in REQUIRED_COMMON if k not in e]
        if missing:
            errors.append(f"event {i}: missing keys {missing}")
            continue
        if ph not in KNOWN_PHASES:
            errors.append(f"event {i}: unknown phase {ph!r}")
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            errors.append(f"event {i}: bad ts {e['ts']!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i}: complete event with bad dur {dur!r}")
        used_pids.add(e["pid"])
        payload += 1

    for pid in sorted(used_pids - named_pids):
        errors.append(f"pid {pid} has events but no process_name metadata")
    if payload < args.min_events:
        errors.append(f"only {payload} events; expected >= {args.min_events}")

    if errors:
        return fail(errors[:25] + ([f"... and {len(errors) - 25} more"]
                                   if len(errors) > 25 else []))
    print(f"validate_trace: OK ({payload} events, "
          f"{len(used_pids)} trace processes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
